//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` without
//! `syn`/`quote`, hand-parsing the derive input's token stream.
//!
//! Supported shapes — the ones this workspace actually derives on:
//!
//! * named-field structs → JSON objects (field order preserved)
//! * tuple structs → newtype transparency for one field, JSON arrays
//!   otherwise
//! * fieldless enums → the variant name as a JSON string
//!
//! Generics and data-carrying enum variants are rejected with a compile
//! error naming the limitation, so an unsupported use fails loudly at the
//! definition site instead of producing wrong JSON.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the vendored trait) for a type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match parse(&tokens) {
        Ok(item) => generate(&item),
        Err(msg) => compile_error(&msg),
    }
}

enum Item {
    /// Struct with named fields, in declaration order.
    Named { name: String, fields: Vec<String> },
    /// Tuple struct with `arity` fields.
    Tuple { name: String, arity: usize },
    /// Enum whose variants all carry no data.
    Fieldless { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip one `#[...]` attribute starting at `i`; returns the new index.
fn skip_attr(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '#' {
            i += 1;
            // `#![...]` inner attributes cannot appear here; `#[...]` only.
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                return i + 1;
            }
        }
    }
    i
}

fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        let next = skip_attr(tokens, i);
        if next != i {
            i = next;
            continue;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                // `pub(crate)`, `pub(super)`, ...
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
                continue;
            }
        }
        return i;
    }
}

fn parse(tokens: &[TokenTree]) -> Result<Item, String> {
    let mut i = skip_attrs_and_vis(tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => {
            return Err(format!(
                "vendored serde_derive supports only structs and enums, found {other:?}"
            ))
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive cannot handle generic type `{name}`; write the Serialize impl by hand"
        ));
    }
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Ok(Item::Named {
                    name,
                    fields: parse_named_fields(&body)?,
                })
            } else {
                Ok(Item::Fieldless {
                    name: name.clone(),
                    variants: parse_fieldless_variants(&name, &body)?,
                })
            }
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Item::Tuple {
                name,
                arity: count_tuple_fields(&body),
            })
        }
        other => Err(format!("unsupported {kind} body for `{name}`: {other:?}")),
    }
}

/// Split `body` on commas at angle-bracket depth zero. Groups (parens,
/// brackets, braces) are single tokens in a `TokenStream`, so only `<`/`>`
/// need explicit depth tracking.
fn split_top_level_commas(body: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in body {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for part in split_top_level_commas(body) {
        let i = skip_attrs_and_vis(&part, 0);
        match part.get(i) {
            Some(TokenTree::Ident(id)) => {
                if !matches!(part.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
                    return Err(format!("expected `:` after field `{id}`"));
                }
                fields.push(id.to_string());
            }
            None => {} // trailing comma
            other => return Err(format!("unexpected token in struct body: {other:?}")),
        }
    }
    Ok(fields)
}

fn count_tuple_fields(body: &[TokenTree]) -> usize {
    split_top_level_commas(body).len()
}

fn parse_fieldless_variants(enum_name: &str, body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    for part in split_top_level_commas(body) {
        let i = skip_attrs_and_vis(&part, 0);
        match part.get(i) {
            Some(TokenTree::Ident(id)) => {
                if let Some(TokenTree::Group(_)) = part.get(i + 1) {
                    return Err(format!(
                        "vendored serde_derive cannot serialize data-carrying variant \
                         `{enum_name}::{id}`; write the Serialize impl by hand"
                    ));
                }
                // A `= discriminant` suffix is fine: the name is the value.
                variants.push(id.to_string());
            }
            None => {}
            other => return Err(format!("unexpected token in enum body: {other:?}")),
        }
    }
    Ok(variants)
}

fn generate(item: &Item) -> TokenStream {
    let code = match item {
        Item::Named { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::serialize(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::Tuple { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Fieldless { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(\
                         ::std::string::String::from({v:?}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    code.parse().unwrap()
}

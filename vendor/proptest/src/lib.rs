//! Offline stand-in for `proptest`: random-case property testing with the
//! subset of the API this workspace uses.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its deterministic case
//!   number; re-running reproduces it exactly (seeds derive from the test
//!   name, not from entropy), which substitutes for persistence files.
//! * **Strategies are direct samplers** (`&self, &mut rng -> Value`), not
//!   value trees.
//!
//! Supported surface: `proptest!` (with optional
//! `#![proptest_config(...)]`), integer/float range strategies, tuples up
//! to arity 6, `prop_map`, `Just`, `any::<T>()`, `collection::vec`, and
//! the `prop_assert*` / `prop_assume!` macros.

use rand::SeedableRng;
pub use rand_chacha::ChaCha8Rng as TestRng;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Per-test configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default.
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Outcome of one generated case (returned by the macro-built closure).
pub enum CaseResult {
    /// The property body ran to completion.
    Pass,
    /// `prop_assume!` rejected the inputs; the case does not count.
    Reject,
}

/// A source of random values of type `Value`.
///
/// Unlike the real crate's value-tree strategies, these are plain
/// samplers: no shrinking, no recursive simplification.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rand::Rng::gen::<f64>(rng) * (hi - lo)
    }
}

impl Strategy for RangeInclusive<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rand::Rng::gen::<f32>(rng) * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::Rng::gen(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::Rng::gen(rng)
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// FNV-1a over the test's full path: a stable, process-independent seed so
/// every run (and every report of a failing case number) is reproducible.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drive one property: generate and run cases until `config.cases` have
/// been accepted. Called by the `proptest!` macro expansion — not part of
/// the real crate's public API.
#[doc(hidden)]
pub fn run_cases<F>(name: &str, config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> CaseResult,
{
    let seed = seed_for(name);
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = (config.cases as u64).saturating_mul(16).max(1024);
    while accepted < config.cases {
        assert!(
            attempts < max_attempts,
            "{name}: gave up after {attempts} attempts with only {accepted}/{} accepted \
             cases (prop_assume! rejects nearly everything)",
            config.cases
        );
        // Each attempt gets its own generator as a pure function of
        // (test name, attempt index): failures reproduce exactly.
        let mut rng = TestRng::seed_from_u64(seed ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let attempt = attempts;
        attempts += 1;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        match outcome {
            Ok(CaseResult::Pass) => accepted += 1,
            Ok(CaseResult::Reject) => {}
            Err(payload) => {
                eprintln!(
                    "proptest: {name} failed at deterministic case #{attempt} \
                     (rerun reproduces it)"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function running many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategy = ( $( $strat, )+ );
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                __config,
                |__rng| {
                    let ( $( $arg, )+ ) = $crate::Strategy::generate(&__strategy, __rng);
                    $body
                    $crate::CaseResult::Pass
                },
            );
        }
    )*};
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Discard the current case (it does not count toward the case budget)
/// when its generated inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return $crate::CaseResult::Reject;
        }
    };
}

/// The usual glob import for tests: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..10, f in -1.0f64..1.0, i in -5i32..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!((-5..=5).contains(&i));
        }

        #[test]
        fn tuples_and_map(
            pair in (0u32..4, 0u32..4).prop_map(|(a, b)| (a, a + b)),
            flag in any::<bool>(),
        ) {
            prop_assert!(pair.1 >= pair.0);
            prop_assert!((flag as u8) < 2);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        use crate::Strategy;
        let strat = 0u64..1_000_000;
        let mut first = Vec::new();
        crate::run_cases("det", crate::ProptestConfig::with_cases(5), |rng| {
            first.push(strat.generate(rng));
            crate::CaseResult::Pass
        });
        let mut second = Vec::new();
        crate::run_cases("det", crate::ProptestConfig::with_cases(5), |rng| {
            second.push(strat.generate(rng));
            crate::CaseResult::Pass
        });
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "gave up")]
    fn hopeless_assume_gives_up() {
        crate::run_cases("hopeless", crate::ProptestConfig::with_cases(4), |_rng| {
            crate::CaseResult::Reject
        });
    }
}

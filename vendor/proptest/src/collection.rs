//! Collection strategies: `proptest::collection::vec`.

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// A range of collection sizes (the subset of the real crate's `SizeRange`
/// the workspace needs).
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for vectors with elements from `element` and lengths drawn
/// from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`: vectors of generated
/// elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

//! Offline stand-in for `rayon`: the subset of the data-parallelism API
//! this workspace uses, executed on scoped OS threads instead of a
//! work-stealing pool.
//!
//! Shape preserved from the real crate:
//!
//! * `ThreadPoolBuilder::new().num_threads(n).build()?` then
//!   `pool.install(|| ...)` scopes the parallelism width;
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` returns results in
//!   input order regardless of which thread ran which item;
//! * `current_num_threads()` reports the installed width.
//!
//! Differences: `install` runs its closure on the calling thread (the
//! real crate migrates it onto a pool worker), and worker threads are
//! spawned per `collect` call rather than kept hot. For coarse-grained
//! simulation work items (milliseconds to minutes each), thread spawn
//! overhead (~tens of microseconds) is noise.

#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! The usual glob import: traits needed for `par_iter().map().collect()`.
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Parallelism width installed by the innermost `ThreadPool::install`
    /// on this thread; 0 = none installed (use the hardware default).
    static INSTALLED_WIDTH: Cell<usize> = const { Cell::new(0) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of threads parallel iterators will use here and now.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_WIDTH.with(Cell::get);
    if installed == 0 {
        hardware_threads()
    } else {
        installed
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this
/// implementation; kept so `?`/`expect` call sites compile unchanged).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use exactly `n` threads; 0 (the default) means the hardware count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Finish building.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            hardware_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { width })
    }
}

/// A parallelism scope of fixed width.
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's width governing any parallel iterators
    /// it executes; restores the previous width afterwards (even on
    /// panic).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_WIDTH.with(|w| w.set(self.0));
            }
        }
        let _restore = Restore(INSTALLED_WIDTH.with(|w| w.replace(self.width)));
        op()
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }
}

/// Run two closures, potentially in parallel, and return both results.
///
/// As in the real crate, `oper_a` runs on the calling thread; `oper_b`
/// may run on another thread. With a width of 1 installed, both run
/// sequentially on the calling thread.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let width = current_num_threads();
    if width <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let handle_b = scope.spawn(move || {
            // Inherit the caller's installed width so nested parallel
            // iterators on this side still honor `--jobs`-style caps.
            INSTALLED_WIDTH.with(|w| w.set(width));
            oper_b()
        });
        let ra = oper_a();
        match handle_b.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// Conversion into a by-reference parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The iterator's item type.
    type Item: 'a;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterate the collection's elements by reference, in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

/// A parallel pipeline that can be mapped and collected.
pub trait ParallelIterator: Sized {
    /// The item type flowing through the pipeline.
    type Item;

    /// Apply `f` to every item in parallel.
    fn map<U, F>(self, f: F) -> ParMap<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        ParMap { inner: self, f }
    }

    /// Execute the pipeline, preserving input order in the output.
    fn collect<C: FromParallel<Self::Item>>(self) -> C
    where
        Self::Item: Send,
    {
        C::from_ordered_vec(self.run())
    }

    /// Execute the pipeline into an ordered `Vec` (implementation detail).
    #[doc(hidden)]
    fn run(self) -> Vec<Self::Item>
    where
        Self::Item: Send;
}

/// Parallel iterator over a slice (`slice.par_iter()`).
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;
    fn run(self) -> Vec<&'a T> {
        // No closure to pay for: just collect the references.
        self.slice.iter().collect()
    }
}

/// Parallel iterator adaptor returned by [`ParallelIterator::map`].
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'a, T, U, F> ParallelIterator for ParMap<ParSlice<'a, T>, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    type Item = U;
    fn run(self) -> Vec<U> {
        run_indexed(self.inner.slice, &self.f)
    }
}

// Two-stage pipelines (`par_iter().map(f).map(g)`) compose the closures.
impl<'a, T, U, V, F, G> ParallelIterator for ParMap<ParMap<ParSlice<'a, T>, F>, G>
where
    T: Sync,
    U: Send,
    V: Send,
    F: Fn(&'a T) -> U + Sync,
    G: Fn(U) -> V + Sync,
{
    type Item = V;
    fn run(self) -> Vec<V> {
        let (f, g) = (self.inner.f, self.f);
        run_indexed(self.inner.inner.slice, &move |t| g(f(t)))
    }
}

/// Fan `items` across `current_num_threads()` scoped workers; results come
/// back slotted by input index, so the output order never depends on
/// scheduling.
fn run_indexed<'a, T, U, F>(items: &'a [T], f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    let workers = current_num_threads().min(items.len()).max(1);
    if workers == 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let done: Vec<Mutex<Option<U>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // The whole width is committed to this fan-out: nested
                // parallel iterators on a worker run serially, bounding
                // total threads by the installed width (the real crate
                // bounds them by sharing one pool).
                INSTALLED_WIDTH.with(|w| w.set(1));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let value = f(item);
                    *done[i].lock().unwrap() = Some(value);
                }
            });
        }
    });
    done.into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker completed every claimed slot")
        })
        .collect()
}

/// Ordered collection from a parallel pipeline (`FromParallelIterator`
/// stand-in).
pub trait FromParallel<T> {
    /// Build the collection from results already in input order.
    fn from_ordered_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_ordered_vec(v: Vec<T>) -> Vec<T> {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..500).collect();
        let squares: Vec<u64> = input.par_iter().map(|&x| x * x).collect();
        assert_eq!(squares, (0..500).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn chained_maps_compose() {
        let input = vec![1u32, 2, 3, 4];
        let out: Vec<String> = input
            .par_iter()
            .map(|&x| x + 1)
            .map(|x| x.to_string())
            .collect();
        assert_eq!(out, vec!["2", "3", "4", "5"]);
    }

    #[test]
    fn install_scopes_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            let inner = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
            inner.install(|| assert_eq!(current_num_threads(), 1));
            assert_eq!(current_num_threads(), 3);
        });
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn work_actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..64).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<u32> = pool.install(|| {
            input
                .par_iter()
                .map(|&x| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    x
                })
                .collect()
        });
        assert_eq!(out, input);
        // With 64 sleeping items over 4 workers, more than one thread
        // must have participated.
        assert!(ids.lock().unwrap().len() > 1);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, vec![14]);
    }
}
